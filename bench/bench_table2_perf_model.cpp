/// Table II validation — the Eq-10 performance model's predicted per-step
/// cost for each strategy vs the simulated schedule, and whether the
/// model's ranking matches the simulator's ranking.

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  const auto spec = runtime::bert_l();
  TablePrinter table({"N", "B", "strategy", "Qfw", "Qbw", "predicted(ms)",
                      "simulated(ms)"});
  CsvWriter csv("table2_perf_model.csv",
                {"gpus", "tokens", "strategy", "predicted_ms",
                 "simulated_ms"});

  int rank_matches = 0, totals = 0;
  for (int gpus : {8, 64}) {
    for (std::int64_t b : {4096, 16384}) {
      sim::Cluster cluster = pod_of(gpus);
      const int n = 4;
      const std::int64_t micro = b / n;
      core::StrategySelector selector(
          core::StrategySelector::measure(cluster, micro, spec.d_model));

      std::vector<std::pair<double, double>> costs;  // (pred, sim)
      for (auto s : {core::ReuseStrategy::kS1, core::ReuseStrategy::kS2,
                     core::ReuseStrategy::kS3, core::ReuseStrategy::kS4}) {
        const double predicted =
            selector.model().step_cost(s, micro, spec.d_model,
                                       spec.d_hidden) *
            n;  // n micro-batches per step
        sim::Cluster c2 = pod_of(gpus);
        core::MoELayerOptions o = pipemoe_options(spec, n, true);
        o.strategy = s;
        core::MoELayer layer(c2, o);
        const double simulated = layer.step_timing(b).step_seconds();
        costs.emplace_back(predicted, simulated);
        const auto w = core::workload_of(
            s, static_cast<int>(spec.d_hidden / spec.d_model));
        auto qstr = [](const std::array<int, 3>& q) {
          return "[" + std::to_string(q[0]) + "," + std::to_string(q[1]) +
                 "," + std::to_string(q[2]) + "]";
        };
        table.add_row({std::to_string(gpus), std::to_string(b),
                       core::to_string(s), qstr(w.forward),
                       qstr(w.backward), fmt(to_ms(predicted), 2),
                       fmt(to_ms(simulated), 2)});
        csv.row({std::to_string(gpus), std::to_string(b),
                 core::to_string(s), CsvWriter::num(to_ms(predicted)),
                 CsvWriter::num(to_ms(simulated))});
      }
      // Does the model's argmin match the simulator's argmin?
      int best_pred = 0, best_sim = 0;
      for (int i = 1; i < 4; ++i) {
        if (costs[static_cast<std::size_t>(i)].first <
            costs[static_cast<std::size_t>(best_pred)].first) {
          best_pred = i;
        }
        if (costs[static_cast<std::size_t>(i)].second <
            costs[static_cast<std::size_t>(best_sim)].second) {
          best_sim = i;
        }
      }
      ++totals;
      if (best_pred == best_sim) ++rank_matches;
    }
  }
  std::printf("Table II: Eq-10 predictions vs simulated schedules "
              "(BERT-L, n=4)\n\n");
  table.print();
  std::printf("\nmodel picked the simulator's best strategy at %d/%d grid "
              "points\n", rank_matches, totals);
  return 0;
}
