/// google-benchmark microbench: the data-movement hot paths — span
/// gather/scatter (token packing around the expert GEMMs) and the Adam
/// step. Scalar/memcpy baselines stay in the suite so the SIMD + pool
/// variants have an honest in-tree reference; items_per_second is bytes/s
/// for the copies and parameter elements/s for Adam.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "moe/expert.h"
#include "runtime/adam.h"
#include "tensor/quant.h"
#include "tensor/random_init.h"

namespace {

using namespace mpipe;

/// Ragged span list over a (rows, cols) buffer: `pieces` spans with a
/// 3:1 largest:smallest skew, covering half the buffer's rows.
moe::RowSpanList make_spans(std::int64_t rows, int pieces) {
  moe::RowSpanList spans;
  std::int64_t covered = 0;
  const std::int64_t budget = rows / 2;
  for (int i = 0; i < pieces; ++i) {
    const std::int64_t count =
        budget / pieces + (i % 3 == 0 ? budget / (2 * pieces) : 0);
    const std::int64_t offset = covered * 2;  // gaps between spans
    if (offset + count > rows) break;
    spans.push_back({offset, count});
    covered += count;
  }
  return spans;
}

void BM_GatherSpans(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = state.range(1);
  Rng rng(11);
  Tensor buf(Shape{rows, cols});
  init_normal(buf, rng);
  const moe::RowSpanList spans = make_spans(rows, 16);
  std::uint64_t moved = 0;
  for (auto _ : state) {
    Tensor packed = moe::gather_spans(buf, spans);
    benchmark::DoNotOptimize(packed.data());
    moved += static_cast<std::uint64_t>(packed.nbytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_GatherSpans)->Args({512, 256})->Args({2048, 16})->Args({8192, 1024});

void BM_GatherSpansMemcpy(benchmark::State& state) {
  // The pre-vectorization implementation: one serial memcpy per span.
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = state.range(1);
  Rng rng(11);
  Tensor buf(Shape{rows, cols});
  init_normal(buf, rng);
  const moe::RowSpanList spans = make_spans(rows, 16);
  std::uint64_t moved = 0;
  for (auto _ : state) {
    Tensor packed(Shape{moe::span_rows(spans), cols});
    float* dst = packed.data();
    for (const moe::RowSpan& s : spans) {
      std::memcpy(dst, buf.data() + s.offset * cols,
                  static_cast<std::size_t>(s.count * cols) * sizeof(float));
      dst += s.count * cols;
    }
    benchmark::DoNotOptimize(packed.data());
    moved += static_cast<std::uint64_t>(packed.nbytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_GatherSpansMemcpy)->Args({512, 256})->Args({2048, 16})->Args({8192, 1024});

void BM_GatherSpansBf16(benchmark::State& state) {
  // Payload packing in the bf16 wire format: gather the spans, then round
  // the packed rows through bf16 — what a dispatch alltoall's payload
  // staging costs when compute_dtype is kBF16. items_per_second counts the
  // *wire* bytes (half the fp32 gather's), so the rate is directly
  // comparable against BM_GatherSpans on the payload-reduction axis.
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = state.range(1);
  Rng rng(11);
  Tensor buf(Shape{rows, cols});
  init_normal(buf, rng);
  const moe::RowSpanList spans = make_spans(rows, 16);
  std::uint64_t moved = 0;
  for (auto _ : state) {
    Tensor packed = moe::gather_spans(buf, spans);
    round_through_bf16(packed.data(), packed.numel());
    benchmark::DoNotOptimize(packed.data());
    moved += quantized_bytes(moe::span_rows(spans), cols, DType::kBF16);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_GatherSpansBf16)->Args({512, 256})->Args({8192, 1024});

void BM_ScatterSpans(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t cols = state.range(1);
  Rng rng(12);
  Tensor buf(Shape{rows, cols});
  const moe::RowSpanList spans = make_spans(rows, 16);
  Tensor packed(Shape{moe::span_rows(spans), cols});
  init_normal(packed, rng);
  std::uint64_t moved = 0;
  for (auto _ : state) {
    moe::scatter_spans(packed, buf, spans);
    benchmark::DoNotOptimize(buf.data());
    moved += static_cast<std::uint64_t>(packed.nbytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_ScatterSpans)->Args({512, 256})->Args({8192, 1024});

void BM_AdamStep(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(13);
  Tensor w(Shape{n}), g(Shape{n});
  init_normal(w, rng);
  init_normal(g, rng);
  runtime::AdamOptions opt;
  opt.weight_decay = 0.01f;
  runtime::Adam adam({&w}, {&g}, opt);
  for (auto _ : state) {
    adam.step();
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_AdamStep)->Arg(1 << 16)->Arg(1 << 22);

void BM_AdamStepScalar(benchmark::State& state) {
  // The pre-vectorization implementation: serial scalar element loop.
  const std::int64_t n = state.range(0);
  Rng rng(13);
  Tensor w(Shape{n}), g(Shape{n});
  init_normal(w, rng);
  init_normal(g, rng);
  std::vector<float> m(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> v(static_cast<std::size_t>(n), 0.0f);
  const float lr = 1e-3f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f, wd = 0.01f;
  std::int64_t t = 0;
  float* p = w.data();
  const float* gd = g.data();
  for (auto _ : state) {
    ++t;
    const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t));
    const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t));
    for (std::int64_t k = 0; k < n; ++k) {
      const float grad = gd[k] + wd * p[k];
      m[static_cast<std::size_t>(k)] =
          b1 * m[static_cast<std::size_t>(k)] + (1.0f - b1) * grad;
      v[static_cast<std::size_t>(k)] =
          b2 * v[static_cast<std::size_t>(k)] + (1.0f - b2) * grad * grad;
      const float m_hat = m[static_cast<std::size_t>(k)] / bc1;
      const float v_hat = v[static_cast<std::size_t>(k)] / bc2;
      p[k] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_AdamStepScalar)->Arg(1 << 16)->Arg(1 << 22);

}  // namespace

BENCHMARK_MAIN();
