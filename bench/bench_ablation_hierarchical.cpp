/// Extension ablation — hierarchical AllToAll (DeepSpeed-MoE, paper §VI):
/// one flat fused AllToAll vs the 3-phase intra/inter/intra decomposition,
/// across per-device payloads and cluster sizes. Under this cost model the
/// hierarchical variant wins when few nodes are involved (only
/// (nodes-1)/nodes of the payload crosses the slow fabric, vs (P-1)/P for
/// the flat exchange) and loses its edge as the node count grows or when
/// its two extra launches dominate small payloads. Real NCCL adds a
/// per-rank latency term to flat AllToAll that this model omits, which is
/// where DeepSpeed-MoE's variant gains at scale.

#include "bench_common.h"

#include "comm/all_to_all.h"
#include "comm/collectives.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  TablePrinter table({"GPUs", "payload/GPU", "flat (us)", "hierarchical (us)",
                      "winner"});
  CsvWriter csv("ablation_hierarchical.csv",
                {"gpus", "payload_bytes", "flat_us", "hier_us"});

  for (int gpus : {16, 64}) {
    sim::Cluster cluster = pod_of(gpus);
    comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
    for (std::uint64_t payload :
         {64 * KiB, 512 * KiB, 4 * MiB, 32 * MiB}) {
      sim::OpGraph flat_graph;
      comm::alltoall_timed(flat_graph, world, payload, "flat", {});
      const double flat = cluster.time_only(flat_graph).makespan;

      sim::OpGraph hier_graph;
      comm::hierarchical_alltoall_timed(hier_graph, world, payload, "hier",
                                        {});
      const double hier = cluster.time_only(hier_graph).makespan;

      table.add_row({std::to_string(gpus),
                     std::to_string(payload / KiB) + " KiB",
                     fmt(to_us(flat), 1), fmt(to_us(hier), 1),
                     hier < flat ? "hierarchical" : "flat"});
      csv.row({std::to_string(gpus), std::to_string(payload),
               CsvWriter::num(to_us(flat)), CsvWriter::num(to_us(hier))});
    }
  }
  std::printf("Ablation: flat fused AllToAll vs hierarchical (DeepSpeed-MoE "
              "style)\n\n");
  table.print();
  return 0;
}
