/// google-benchmark closed-loop serving bench: a fresh Server per
/// iteration replays a fixed open-arrival trace (Poisson and bursty
/// shapes) through the continuous batcher and the forward-only path.
/// items_per_second is real tokens served per wall-clock second (the
/// host-side cost of batching + forward_only); the counters carry the
/// virtual-clock serving quality — p50/p99 end-to-end latency in
/// milliseconds and tokens/s on the simulated timeline — which is what
/// joins the BENCH_*.json trajectory.

#include <benchmark/benchmark.h>

#include "core/moe_layer.h"
#include "serve/server.h"
#include "serve/traffic.h"

namespace {

using namespace mpipe;

core::MoELayerOptions layer_options(DType dtype = DType::kF32) {
  core::MoELayerOptions o;
  o.d_model = 64;
  o.d_hidden = 256;
  o.num_experts = 4;
  o.num_partitions = 2;  // fixed n: no search noise in the timing
  o.memory_reuse = true;
  o.compute_dtype = dtype;
  o.seed = 13;
  return o;
}

serve::TrafficOptions traffic_options() {
  serve::TrafficOptions t;
  t.num_requests = 32;
  t.rate_rps = 2000.0;
  t.min_tokens = 1;
  t.max_tokens = 16;
  t.d_model = 64;
  t.seed = 29;
  return t;
}

void run_serve(benchmark::State& state,
               std::vector<serve::ServeRequest> (*make_trace)(
                   const serve::TrafficOptions&),
               DType dtype = DType::kF32) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, layer_options(dtype));
  serve::ServerOptions sopt;
  sopt.slo.max_tokens_per_device = 64;
  const auto trace = make_trace(traffic_options());

  std::int64_t tokens = 0;
  double p50 = 0.0, p99 = 0.0, virtual_tps = 0.0, batch_tokens = 0.0;
  for (auto _ : state) {
    serve::Server server(layer, sopt);
    const serve::ServeMetrics& m = server.run(trace);
    tokens += static_cast<std::int64_t>(m.total_tokens());
    p50 = m.latency_percentile(0.5);
    p99 = m.latency_percentile(0.99);
    virtual_tps = m.tokens_per_second();
    batch_tokens = m.mean_batch_tokens();
  }
  state.SetItemsProcessed(tokens);
  state.counters["p50_ms"] = p50 * 1e3;
  state.counters["p99_ms"] = p99 * 1e3;
  state.counters["virtual_tokens_per_s"] = virtual_tps;
  state.counters["mean_batch_tokens"] = batch_tokens;
  // Reduction axes of the last dispatch (Fig-10 payload / Fig-9 weights):
  // forward_only fills the same StepReport fields training does, so the
  // bf16 row's bytes read directly against the f32 rows above it.
  const core::StepReport& r = layer.last_report();
  state.counters["alltoall_payload_bytes"] =
      static_cast<double>(r.alltoall_payload_bytes);
  state.counters["expert_weight_bytes"] =
      static_cast<double>(r.expert_weight_bytes);
}

// UseRealTime: percentile math and the batcher run on the main thread but
// tokens/s must stay comparable if the executor ever goes parallel.
void BM_ServePoisson(benchmark::State& state) {
  run_serve(state, serve::poisson_trace);
}
BENCHMARK(BM_ServePoisson)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ServeBursty(benchmark::State& state) {
  run_serve(state, serve::bursty_trace);
}
BENCHMARK(BM_ServeBursty)->UseRealTime()->Unit(benchmark::kMillisecond);

/// The Poisson trace served in bf16 wire/storage format: tokens/s vs
/// BM_ServePoisson is the serving-side cost of the reduced dtype, the
/// byte counters its payload/weight savings.
void BM_ServePoissonBf16(benchmark::State& state) {
  run_serve(state, serve::poisson_trace, DType::kBF16);
}
BENCHMARK(BM_ServePoissonBf16)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
