/// google-benchmark microbench: the functional GEMM kernels that carry all
/// expert math in full (numeric) execution mode.
///
/// Covers all three transpose variants of the packed micro-kernel path,
/// the fused bias/activation epilogues, and — as `BM_Scalar*` — the
/// pre-packing scalar kernels this repo shipped before the rewrite, kept
/// here so every run reports the packed-vs-scalar GFLOP/s ratio on the
/// same machine (items_per_second == FLOP/s).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/random_init.h"

namespace {

using namespace mpipe;

// ---- pre-rewrite scalar kernels (baseline under identical flags) ----------

void scalar_gemm_nn(const Tensor& a, const Tensor& b, Tensor& c) {
  constexpr std::int64_t kBlockM = 64, kBlockN = 128, kBlockK = 128;
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t mb = std::min(kBlockM, m - i0);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t kb = std::min(kBlockK, k - k0);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t nb = std::min(kBlockN, n - j0);
        const float* ap = pa + i0 * k + k0;
        const float* bp = pb + k0 * n + j0;
        float* cp = pc + i0 * n + j0;
        for (std::int64_t i = 0; i < mb; ++i) {
          for (std::int64_t kk = 0; kk < kb; ++kk) {
            const float aik = ap[i * k + kk];
            if (aik == 0.0f) continue;
            const float* brow = bp + kk * n;
            float* crow = cp + i * n;
            for (std::int64_t j = 0; j < nb; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

void scalar_gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(arow[kk]) * brow[kk];
      }
      crow[j] += static_cast<float>(acc);
    }
  }
}

void scalar_gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aki = pa[kk * m + i];
      if (aki == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

// ---- harness --------------------------------------------------------------

void flops_counter(benchmark::State& state, std::int64_t m, std::int64_t n,
                   std::int64_t k) {
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(gemm_flops(m, n, k)));
}

template <typename Fn>
void run_square(benchmark::State& state, Fn&& fn) {
  const std::int64_t s = state.range(0);
  Rng rng(1);
  Tensor a(Shape{s, s}), b(Shape{s, s}), c(Shape{s, s});
  init_normal(a, rng);
  init_normal(b, rng);
  for (auto _ : state) {
    fn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  flops_counter(state, s, s, s);
}

// ---- packed kernels -------------------------------------------------------

void BM_GemmNN(benchmark::State& state) {
  run_square(state, [](const Tensor& a, const Tensor& b, Tensor& c) {
    gemm(a, b, c);
  });
}
BENCHMARK(BM_GemmNN)->Arg(256)->Arg(512)->Arg(1024);

void BM_GemmNT(benchmark::State& state) {
  run_square(state, [](const Tensor& a, const Tensor& b, Tensor& c) {
    gemm_nt(a, b, c);
  });
}
BENCHMARK(BM_GemmNT)->Arg(256)->Arg(512)->Arg(1024);

void BM_GemmTN(benchmark::State& state) {
  run_square(state, [](const Tensor& a, const Tensor& b, Tensor& c) {
    gemm_tn(a, b, c);
  });
}
BENCHMARK(BM_GemmTN)->Arg(256)->Arg(512)->Arg(1024);

/// The paper's FFN1 shape family: (tokens x M) x (M x H).
void BM_GemmFFN(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t m = state.range(1);
  const std::int64_t h = state.range(2);
  Rng rng(1);
  Tensor a(Shape{rows, m}), b(Shape{m, h}), c(Shape{rows, h});
  init_normal(a, rng);
  init_normal(b, rng);
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  flops_counter(state, rows, h, m);
}
BENCHMARK(BM_GemmFFN)
    ->Args({64, 64, 256})
    ->Args({256, 256, 1024})
    ->Args({512, 1024, 4096});

// ---- mixed-precision B operand (pack-time dequant) -------------------------

/// Quantized-weight GEMM at the FFN1 shape: identical compute core, the B
/// panels dequantize bf16/int8 -> fp32 at pack time. Reported GFLOP/s vs
/// BM_GemmBiasReluFused is the pack-dequant overhead; bytes touched on the
/// weight stream halve (bf16) or quarter (int8).
template <DType kDt>
void run_gemm_quant(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  Rng rng(1);
  Tensor a(Shape{s, s}), b(Shape{s, s}), bias(Shape{s}), c(Shape{s, s});
  init_normal(a, rng);
  init_normal(b, rng);
  init_normal(bias, rng);
  const QuantizedMatrix q = quantize_matrix(b, kDt);
  QuantView v;
  v.dtype = kDt;
  v.rows = q.rows;
  v.cols = q.cols;
  v.data = kDt == DType::kBF16 ? static_cast<const void*>(q.bf16.data())
                               : static_cast<const void*>(q.i8.data());
  v.row_scales = kDt == DType::kI8 ? q.scales.data() : nullptr;
  for (auto _ : state) {
    gemm_bias_act_q(a, v, bias, GemmEpilogue::kBiasReLU, c);
    benchmark::DoNotOptimize(c.data());
  }
  flops_counter(state, s, s, s);
  state.counters["weight_bytes"] =
      static_cast<double>(quantized_bytes(s, s, kDt));
}

void BM_GemmBf16(benchmark::State& state) {
  run_gemm_quant<DType::kBF16>(state);
}
BENCHMARK(BM_GemmBf16)->Arg(512)->Arg(1024);

void BM_GemmInt8(benchmark::State& state) {
  run_gemm_quant<DType::kI8>(state);
}
BENCHMARK(BM_GemmInt8)->Arg(512)->Arg(1024);

// ---- fused epilogue vs separate passes ------------------------------------

void BM_GemmBiasReluFused(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  Rng rng(1);
  Tensor a(Shape{s, s}), b(Shape{s, s}), bias(Shape{s}), c(Shape{s, s});
  init_normal(a, rng);
  init_normal(b, rng);
  init_normal(bias, rng);
  for (auto _ : state) {
    gemm_bias_act(a, b, bias, GemmEpilogue::kBiasReLU, c);
    benchmark::DoNotOptimize(c.data());
  }
  flops_counter(state, s, s, s);
}
BENCHMARK(BM_GemmBiasReluFused)->Arg(512)->Arg(1024);

void BM_GemmBiasReluSeparate(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  Rng rng(1);
  Tensor a(Shape{s, s}), b(Shape{s, s}), bias(Shape{s}), c(Shape{s, s});
  init_normal(a, rng);
  init_normal(b, rng);
  init_normal(bias, rng);
  for (auto _ : state) {
    gemm(a, b, c);
    add_bias_(c, bias);
    Tensor r = relu(c);
    benchmark::DoNotOptimize(r.data());
  }
  flops_counter(state, s, s, s);
}
BENCHMARK(BM_GemmBiasReluSeparate)->Arg(512)->Arg(1024);

// ---- fused dW+db backward epilogue vs two-pass ----------------------------

/// The backward weight-grad regime: dW(dim x dim) += act^T(rows x dim) dy
/// (rows x dim) plus db += colsum(dy), with `rows` the (often thin)
/// micro-batch expert panel and `dim` the 512^2 weight panel.

void BM_WgradDbFused(benchmark::State& state) {
  const std::int64_t rows = state.range(0), dim = state.range(1);
  Rng rng(1);
  Tensor act(Shape{rows, dim}), dy(Shape{rows, dim});
  Tensor gw(Shape{dim, dim}), gb(Shape{dim});
  init_normal(act, rng);
  init_normal(dy, rng);
  for (auto _ : state) {
    gemm_tn_bias_grad(act, dy, gw, gb, /*accumulate=*/true);
    benchmark::DoNotOptimize(gw.data());
    benchmark::DoNotOptimize(gb.data());
  }
  flops_counter(state, dim, dim, rows);
}
BENCHMARK(BM_WgradDbFused)->Args({64, 512})->Args({512, 512});

/// Pre-epilogue two-pass form: the dW GEMM, then a separate full pass
/// over dy for db (bias_backward allocates and reduces, add_ accumulates).
void BM_WgradDbUnfused(benchmark::State& state) {
  const std::int64_t rows = state.range(0), dim = state.range(1);
  Rng rng(1);
  Tensor act(Shape{rows, dim}), dy(Shape{rows, dim});
  Tensor gw(Shape{dim, dim}), gb(Shape{dim});
  init_normal(act, rng);
  init_normal(dy, rng);
  for (auto _ : state) {
    gemm_tn(act, dy, gw, /*accumulate=*/true);
    add_(gb, bias_backward(dy));
    benchmark::DoNotOptimize(gw.data());
    benchmark::DoNotOptimize(gb.data());
  }
  flops_counter(state, dim, dim, rows);
}
BENCHMARK(BM_WgradDbUnfused)->Args({64, 512})->Args({512, 512});

/// The seed repo's backward: pre-rewrite scalar TN kernel for dW, then
/// the separate db pass — the "unfused two-pass backward" the fused
/// epilogue replaces end to end.
void BM_WgradDbScalarTwoPass(benchmark::State& state) {
  const std::int64_t rows = state.range(0), dim = state.range(1);
  Rng rng(1);
  Tensor act(Shape{rows, dim}), dy(Shape{rows, dim});
  Tensor gw(Shape{dim, dim}), gb(Shape{dim});
  init_normal(act, rng);
  init_normal(dy, rng);
  for (auto _ : state) {
    scalar_gemm_tn(act, dy, gw);
    add_(gb, bias_backward(dy));
    benchmark::DoNotOptimize(gw.data());
    benchmark::DoNotOptimize(gb.data());
  }
  flops_counter(state, dim, dim, rows);
}
BENCHMARK(BM_WgradDbScalarTwoPass)->Args({64, 512})->Args({512, 512});

// ---- pre-rewrite scalar baselines -----------------------------------------

void BM_ScalarGemmNN(benchmark::State& state) {
  run_square(state, scalar_gemm_nn);
}
BENCHMARK(BM_ScalarGemmNN)->Arg(512)->Arg(1024);

void BM_ScalarGemmNT(benchmark::State& state) {
  run_square(state, scalar_gemm_nt);
}
BENCHMARK(BM_ScalarGemmNT)->Arg(512)->Arg(1024);

void BM_ScalarGemmTN(benchmark::State& state) {
  run_square(state, scalar_gemm_tn);
}
BENCHMARK(BM_ScalarGemmTN)->Arg(512)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
