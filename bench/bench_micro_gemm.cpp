/// google-benchmark microbench: the functional GEMM kernels that carry all
/// expert math in full (numeric) execution mode.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/random_init.h"

namespace {

using namespace mpipe;

void BM_GemmNN(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t k = state.range(1);
  const std::int64_t n = state.range(2);
  Rng rng(1);
  Tensor a(Shape{m, k}), b(Shape{k, n}), c(Shape{m, n});
  init_normal(a, rng);
  init_normal(b, rng);
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(gemm_flops(m, n, k)));
}
BENCHMARK(BM_GemmNN)
    ->Args({64, 64, 256})
    ->Args({256, 256, 1024})
    ->Args({512, 1024, 4096});

void BM_GemmTN(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  Rng rng(1);
  Tensor a(Shape{m, 256}), b(Shape{m, 256}), c(Shape{256, 256});
  init_normal(a, rng);
  init_normal(b, rng);
  for (auto _ : state) {
    gemm_tn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTN)->Arg(128)->Arg(512)->Arg(2048);

void BM_GemmNT(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  Rng rng(1);
  Tensor a(Shape{m, 256}), b(Shape{256, 256}), c(Shape{m, 256});
  init_normal(a, rng);
  init_normal(b, rng);
  for (auto _ : state) {
    gemm_nt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNT)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
