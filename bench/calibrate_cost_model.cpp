/// Cost-model calibration harness: times the real packed GEMM across a
/// micro-batch row sweep, fits the piecewise-linear efficiency curve
/// (sim/calibration.h), persists it as CALIBRATION_gemm.csv, then reloads
/// it into a CostModelConfig and reports how the calibrated model tracks
/// the measurements — including how it re-ranks the granularity-search
/// candidates relative to the hand-tuned analytic curve.
///
/// Usage: calibrate_cost_model [out.csv] [d_model] [d_hidden]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/granularity_search.h"
#include "sim/calibration.h"
#include "tensor/gemm.h"
#include "tensor/random_init.h"

namespace {

using namespace mpipe;

double time_gemm_seconds(std::int64_t rows, std::int64_t m, std::int64_t h) {
  Rng rng(17);
  Tensor a(Shape{rows, m}), b(Shape{m, h}), c(Shape{rows, h});
  init_normal(a, rng);
  init_normal(b, rng);
  gemm(a, b, c);  // warm up: page in buffers, spin up the pool
  return bench::time_best_seconds(0.03, [&] { gemm(a, b, c); });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "CALIBRATION_gemm.csv";
  const std::int64_t d_model = argc > 2 ? std::atoll(argv[2]) : 256;
  const std::int64_t d_hidden = argc > 3 ? std::atoll(argv[3]) : 1024;

  const std::vector<std::int64_t> sweep = {1,  2,   4,   8,   16,  32,  64,
                                           96, 128, 192, 256, 384, 512, 768,
                                           1024, 1536, 2048};

  sim::CostModelConfig base;  // hand-tuned defaults, for the comparison

  std::printf("== calibrate_cost_model: FFN1 shape (rows x %lld) x (%lld x "
              "%lld) ==\n",
              static_cast<long long>(d_model),
              static_cast<long long>(d_model),
              static_cast<long long>(d_hidden));
  std::vector<sim::GemmSample> samples;
  for (std::int64_t rows : sweep) {
    sim::GemmSample s;
    s.rows = rows;
    s.flops = gemm_flops(rows, d_hidden, d_model);
    s.seconds = time_gemm_seconds(rows, d_model, d_hidden);
    // Condition out timer noise: a strictly larger GEMM cannot genuinely
    // finish sooner, so an observed inversion is measurement jitter.
    if (!samples.empty()) {
      s.seconds = std::max(s.seconds, samples.back().seconds);
    }
    std::printf("  rows %5lld: %10.1f us  %7.2f GFLOP/s\n",
                static_cast<long long>(rows), s.seconds * 1e6,
                static_cast<double>(s.flops) / s.seconds * 1e-9);
    samples.push_back(s);
  }

  sim::GemmEfficiencyCurve curve =
      sim::fit_efficiency_curve(samples, base.gemm_max_efficiency);
  sim::save_efficiency_curve(out_path, curve);
  std::printf("wrote %s (%zu knots)\n", out_path.c_str(), curve.rows.size());

  // Reload through the same path users take, with the coverage assert fed
  // by the granularity search's own row-range computation.
  const std::vector<int> candidates = {1, 2, 4, 8};
  const auto range = mpipe::core::GranularitySearcher::row_range(
      sweep.front() * candidates.back(), sweep.back(), candidates);
  sim::CostModelConfig calibrated = sim::apply_calibration(
      base, sim::load_efficiency_curve(out_path), range.first, range.second);
  sim::CostModel model(calibrated, sim::Topology(sim::TopologyConfig{}));
  sim::CostModel analytic(base, sim::Topology(sim::TopologyConfig{}));

  // Closed-loop check: predicted seconds vs the measurement, normalized so
  // the comparison is scale-free (the sim's peak_flops is an A100's, this
  // host's peak comes out of the fit: the best sample sits at efficiency
  // gemm_max_efficiency by construction). Worst case must stay within 10%.
  double peak_rate = 0.0;
  for (const auto& s : samples) {
    peak_rate = std::max(peak_rate, static_cast<double>(s.flops) / s.seconds);
  }
  const double scale =  // host-peak / sim-peak
      peak_rate / (calibrated.peak_flops * calibrated.gemm_max_efficiency);
  std::printf("\n%8s %12s %12s %10s %12s %12s\n", "rows", "meas_us",
              "pred_us", "rel_err", "eff_fit", "eff_analytic");
  double worst = 0.0;
  for (const auto& s : samples) {
    const double pred =
        (model.gemm_seconds(s.flops, s.rows) - calibrated.compute_launch_latency) /
        scale;
    const double rel = std::abs(pred - s.seconds) / s.seconds;
    worst = std::max(worst, rel);
    std::printf("%8lld %12.1f %12.1f %9.1f%% %12.3f %12.3f\n",
                static_cast<long long>(s.rows), s.seconds * 1e6, pred * 1e6,
                rel * 100.0, model.gemm_efficiency(s.rows),
                analytic.gemm_efficiency(s.rows));
  }
  std::printf("worst relative error: %.1f%% (acceptance: <= 10%%)\n",
              worst * 100.0);

  // How the calibration re-ranks granularities: per-candidate compute time
  // for one pipelined FFN over B tokens is n * t_gemm(B/n) — the analytic
  // curve's saturation shape and the measured curve can disagree on the
  // best n.
  const std::int64_t B = 1024;
  std::printf("\ncompute-only ranking for B = %lld tokens (FFN1+FFN2):\n",
              static_cast<long long>(B));
  for (int n : candidates) {
    const std::int64_t micro = std::max<std::int64_t>(1, B / n);
    const std::uint64_t flops = 2 * gemm_flops(micro, d_hidden, d_model);
    const double t_meas = n * model.gemm_seconds(flops, micro);
    const double t_analytic = n * analytic.gemm_seconds(flops, micro);
    std::printf("  n = %d: calibrated %9.1f us   analytic %9.1f us\n", n,
                t_meas / scale * 1e6, t_analytic / scale * 1e6);
  }
  return worst <= 0.10 ? 0 : 1;
}
