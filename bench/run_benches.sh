#!/usr/bin/env bash
# Runs the micro benches and emits machine-readable results so future PRs
# have a perf trajectory to compare against.
#
# Usage: bench/run_benches.sh [--check] [--advisory] [build_dir] [baseline_dir]
#   --check       do not overwrite the trajectory: run a quick sweep into a
#                 scratch dir and diff against the committed BENCH_*.json in
#                 baseline_dir. Fails when any benchmark drops >15% below
#                 the pack's median ratio, or the median itself drops below
#                 0.8 (see check_bench_regression.py for the exact
#                 contract); one automatic retry absorbs scheduler noise.
#                 Exits 77 (CTest SKIP) if python3 or a baseline is missing.
#   --advisory    with --check: still run the full diff and print every
#                 regression, but exit 0 regardless. For noisy shared
#                 runners (CI perf-sanity job) where a hard gate would
#                 flake; the local CTest gate stays strict.
#   build_dir     CMake build tree holding bench/ binaries (default: build)
#   baseline_dir  where BENCH_*.json live; in normal mode results are
#                 written here (default: repo root)

set -euo pipefail

CHECK=0
ADVISORY=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --check) CHECK=1 ;;
    --advisory) ADVISORY=1 ;;
    *)
      echo "error: unknown flag $1" >&2
      exit 2
      ;;
  esac
  shift
done

if [[ "${ADVISORY}" == "1" && "${CHECK}" == "0" ]]; then
  echo "error: --advisory only makes sense with --check (normal mode would" >&2
  echo "       overwrite the committed BENCH_*.json trajectory)" >&2
  exit 2
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

# Name every missing binary (not just the first): a partial build otherwise
# produces a hard-to-debug one-liner in CI logs.
MISSING=0
for bin in bench_micro_gemm bench_micro_alltoall bench_micro_datamove \
           bench_micro_step bench_serve; do
  if [[ ! -x "${BUILD_DIR}/bench/${bin}" ]]; then
    echo "error: bench binary missing: ${BUILD_DIR}/bench/${bin}" >&2
    MISSING=1
  fi
done
if [[ "${MISSING}" == "1" ]]; then
  echo "Build the bench targets first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

run_suite() {  # run_suite <name> <dest_dir> <extra args...>
  local name="$1" dest="$2"
  shift 2
  # BENCH_<kind>.json: strip bench_micro_ first, then bench_ (bench_serve).
  local kind="${name#bench_micro_}"
  kind="${kind#bench_}"
  echo "== ${name} (items_per_second == FLOP/s, bytes/s or tokens/s) =="
  "${BUILD_DIR}/bench/${name}" \
    --benchmark_out="${dest}/BENCH_${kind}.json" \
    --benchmark_out_format=json "$@"
}

if [[ "${CHECK}" == "0" ]]; then
  mkdir -p "${OUT_DIR}"
  run_suite bench_micro_gemm "${OUT_DIR}"
  run_suite bench_micro_alltoall "${OUT_DIR}"
  run_suite bench_micro_datamove "${OUT_DIR}"
  run_suite bench_micro_step "${OUT_DIR}"
  run_suite bench_serve "${OUT_DIR}"
  echo "Wrote ${OUT_DIR}/BENCH_{gemm,alltoall,datamove,step,serve}.json"
  exit 0
fi

# ---- --check mode ----------------------------------------------------------

if ! command -v python3 >/dev/null 2>&1; then
  echo "skip: python3 not available for the regression diff" >&2
  exit 77
fi
for f in BENCH_gemm.json BENCH_alltoall.json BENCH_datamove.json \
         BENCH_step.json BENCH_serve.json; do
  if [[ ! -f "${OUT_DIR}/${f}" ]]; then
    echo "skip: no committed baseline ${OUT_DIR}/${f}" >&2
    exit 77
  fi
done

SCRATCH="${BUILD_DIR}/bench_check"
check_once() {
  rm -rf "${SCRATCH}"
  mkdir -p "${SCRATCH}"
  # min_time 0.3 keeps even the ~140 ms/iter scalar baselines at >= 2
  # iterations (one cold iteration skews short runs); best-of-2 reps and
  # the checker's median normalization absorb shared-VM noise.
  run_suite bench_micro_gemm "${SCRATCH}" \
    --benchmark_min_time=0.3 --benchmark_repetitions=2
  run_suite bench_micro_alltoall "${SCRATCH}" \
    --benchmark_min_time=0.3 --benchmark_repetitions=2
  run_suite bench_micro_datamove "${SCRATCH}" \
    --benchmark_min_time=0.3 --benchmark_repetitions=2
  run_suite bench_micro_step "${SCRATCH}" \
    --benchmark_min_time=0.3 --benchmark_repetitions=2
  run_suite bench_serve "${SCRATCH}" \
    --benchmark_min_time=0.3 --benchmark_repetitions=2
  local status=0
  for kind in gemm alltoall datamove step serve; do
    python3 "${SCRIPT_DIR}/check_bench_regression.py" \
      --baseline "${OUT_DIR}/BENCH_${kind}.json" \
      --candidate "${SCRATCH}/BENCH_${kind}.json" \
      --threshold 0.15 || status=1
  done
  return "${status}"
}

if check_once; then
  exit 0
fi
echo "== regression reported; retrying once to rule out scheduler noise =="
if check_once; then
  exit 0
fi
if [[ "${ADVISORY}" == "1" ]]; then
  echo "== advisory mode: regressions reported above, NOT failing the run =="
  echo "   (shared-runner noise; treat as a pointer, reproduce locally)"
  exit 0
fi
exit 1
