#!/usr/bin/env bash
# Runs the micro benches and emits machine-readable results so future PRs
# have a perf trajectory to compare against.
#
# Usage: bench/run_benches.sh [build_dir] [out_dir]
#   build_dir  CMake build tree holding bench/ binaries (default: build)
#   out_dir    where BENCH_*.json land (default: repo root)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

if [[ ! -x "${BUILD_DIR}/bench/bench_micro_gemm" ]]; then
  echo "error: ${BUILD_DIR}/bench/bench_micro_gemm not built." >&2
  echo "Run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

echo "== bench_micro_gemm (items_per_second == FLOP/s) =="
"${BUILD_DIR}/bench/bench_micro_gemm" \
  --benchmark_out="${OUT_DIR}/BENCH_gemm.json" \
  --benchmark_out_format=json

echo "== bench_micro_alltoall =="
"${BUILD_DIR}/bench/bench_micro_alltoall" \
  --benchmark_out="${OUT_DIR}/BENCH_alltoall.json" \
  --benchmark_out_format=json

echo "Wrote ${OUT_DIR}/BENCH_gemm.json and ${OUT_DIR}/BENCH_alltoall.json"
