/// Fig 11 — overall performance breakdown on GPT-XL: each system as a
/// point in (memory footprint, training time) space; closer to the origin
/// is better. Paper: MPipeMoE dominates FastMoE/FasterMoE; PipeMoE is the
/// fastest, MPipeMoE trades a little time for the smallest footprint.

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  const auto spec = runtime::gpt_xl();
  const std::int64_t b = 16384;

  TablePrinter table({"system", "memory (MiB)", "time (ms)"});
  CsvWriter csv("fig11_pareto.csv", {"system", "memory_mib", "time_ms"});

  auto emit = [&](const std::string& name, const core::StepReport& r) {
    table.add_row({name,
                   fmt(mib(static_cast<double>(r.memory.total_peak)), 0),
                   fmt(to_ms(r.step_seconds()), 2)});
    csv.row({name,
             CsvWriter::num(mib(static_cast<double>(r.memory.total_peak))),
             CsvWriter::num(to_ms(r.step_seconds()))});
  };

  sim::Cluster c1 = paper_pod(), c2 = paper_pod(), c3 = paper_pod(),
               c4 = paper_pod(), c5 = paper_pod();
  emit("FastMoE", fastmoe_step(c1, spec, b, 0.01));
  emit("FasterMoE", fastermoe_step(c2, spec, b, 0.01));
  emit("PipeMoE(n=4)", pipemoe_step(c3, spec, b, 4, false, 0.01));
  emit("PipeMoE", pipemoe_step(c4, spec, b, 0, false, 0.01));
  emit("MPipeMoE", pipemoe_step(c5, spec, b, 0, true, 0.01));

  std::printf("Fig 11: memory-time coordinates, GPT-XL, B=16k, 64 GPUs\n");
  std::printf("(closer to the origin is better)\n\n");
  table.print();
  return 0;
}
