/// Fig 9 — peak memory footprint normalised to FastMoE (bars) and
/// MPipeMoE's speedup over FastMoE / FasterMoE (polyline). Paper: MPipeMoE
/// cuts memory by 23 % mean / 40 % max vs FastMoE and 27 % mean / 47 % max
/// vs FasterMoE while keeping a healthy speedup (≤ 2.8× vs FasterMoE).

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  TablePrinter table({"config", "FastMoE", "FasterMoE", "PipeMoE",
                      "MPipeMoE", "spd/Fast", "spd/Faster"});
  CsvWriter csv("fig09_memory_reduction.csv",
                {"model", "tokens", "fastmoe_mem", "fastermoe_mem",
                 "pipemoe_mem", "mpipemoe_mem", "speedup_fastmoe",
                 "speedup_fastermoe"});

  std::vector<double> red_fast, red_faster;
  for (const auto& spec : runtime::paper_models()) {
    for (std::int64_t b : {4096, 8192, 16384}) {
      sim::Cluster c1 = paper_pod(), c2 = paper_pod(), c3 = paper_pod(),
                   c4 = paper_pod();
      // Mild routing skew so FasterMoE's shadowing engages (its memory
      // overhead in the paper comes from dynamic shadowing).
      const auto fast = fastmoe_step(c1, spec, b, 0.01);
      const auto faster = fastermoe_step(c2, spec, b, 0.01);
      const auto pipe = pipemoe_step(c3, spec, b, 0, false, 0.01);
      const auto mpipe_rep = pipemoe_step(c4, spec, b, 0, true, 0.01);

      const double base = static_cast<double>(fast.memory.total_peak);
      const double m_faster =
          static_cast<double>(faster.memory.total_peak) / base;
      const double m_pipe =
          static_cast<double>(pipe.memory.total_peak) / base;
      const double m_mpipe =
          static_cast<double>(mpipe_rep.memory.total_peak) / base;
      red_fast.push_back(1.0 - m_mpipe);
      red_faster.push_back(1.0 - m_mpipe / m_faster);

      const std::string config =
          spec.name + "(" + std::to_string(b / 1024) + "k)";
      table.add_row(
          {config, fmt(1.0), fmt(m_faster), fmt(m_pipe), fmt(m_mpipe),
           fmt(fast.step_seconds() / mpipe_rep.step_seconds()),
           fmt(faster.step_seconds() / mpipe_rep.step_seconds())});
      csv.row({spec.name, std::to_string(b),
               CsvWriter::num(static_cast<double>(fast.memory.total_peak)),
               CsvWriter::num(static_cast<double>(faster.memory.total_peak)),
               CsvWriter::num(static_cast<double>(pipe.memory.total_peak)),
               CsvWriter::num(
                   static_cast<double>(mpipe_rep.memory.total_peak)),
               CsvWriter::num(fast.step_seconds() /
                              mpipe_rep.step_seconds()),
               CsvWriter::num(faster.step_seconds() /
                              mpipe_rep.step_seconds())});
    }
  }
  std::printf("Fig 9: peak memory normalised to FastMoE + MPipeMoE "
              "speedups (64 GPUs)\n\n");
  table.print();
  auto mean_max = [](const std::vector<double>& v) {
    double mean = 0.0, mx = 0.0;
    for (double x : v) {
      mean += x;
      mx = std::max(mx, x);
    }
    return std::make_pair(mean / static_cast<double>(v.size()), mx);
  };
  const auto [mf, xf] = mean_max(red_fast);
  const auto [mr, xr] = mean_max(red_faster);
  std::printf("\nMPipeMoE memory reduction vs FastMoE: mean %.0f%%, max "
              "%.0f%% (paper: 23%%, 40%%)\n", 100 * mf, 100 * xf);
  std::printf("MPipeMoE memory reduction vs FasterMoE: mean %.0f%%, max "
              "%.0f%% (paper: 27%%, 47%%)\n", 100 * mr, 100 * xr);
  return 0;
}
