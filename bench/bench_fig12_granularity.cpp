/// Fig 12 — pipeline-granularity sweep on GPT-XL: speedup over n=1 for
/// fixed n ∈ {2, 4, 8} and for the adaptive configuration, with B from 4k
/// to 31k. Paper: n=2 wins below ~8k, n=4 in 8k–22k, n=8 above 22k, and
/// the adaptive search tracks the winner everywhere. Also reports the
/// Algorithm-1 search statistics (an ablation beyond the paper).

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  const auto spec = runtime::gpt_xl();
  TablePrinter table({"B(k)", "n=1", "n=2", "n=4", "n=8", "adaptive",
                      "chosen n"});
  CsvWriter csv("fig12_granularity.csv",
                {"tokens", "n1", "n2", "n4", "n8", "adaptive", "chosen_n"});

  // One adaptive layer across the sweep so the range set accumulates.
  sim::Cluster adaptive_cluster = paper_pod();
  core::MoELayerOptions ao = pipemoe_options(spec, 0, false);
  core::MoELayer adaptive(adaptive_cluster, ao);

  int mismatches = 0, points = 0;
  for (std::int64_t bk = 4; bk <= 31; ++bk) {
    const std::int64_t b = bk * 1024;
    std::vector<double> times;
    for (int n : {1, 2, 4, 8}) {
      sim::Cluster cluster = paper_pod();
      times.push_back(
          pipemoe_step(cluster, spec, b, n, false).step_seconds());
    }
    const auto rep = adaptive.step_timing(b);
    const double base = times[0];
    // Best fixed configuration for the oracle comparison.
    int best_index = 0;
    for (int i = 1; i < 4; ++i) {
      if (times[static_cast<std::size_t>(i)] <
          times[static_cast<std::size_t>(best_index)]) {
        best_index = i;
      }
    }
    const int best_n = 1 << best_index;
    ++points;
    if (rep.n_partitions != best_n &&
        rep.step_seconds() >
            times[static_cast<std::size_t>(best_index)] * 1.02) {
      ++mismatches;
    }
    table.add_row({std::to_string(bk), fmt(1.0), fmt(base / times[1]),
                   fmt(base / times[2]), fmt(base / times[3]),
                   fmt(base / rep.step_seconds()),
                   std::to_string(rep.n_partitions)});
    csv.row({std::to_string(b), CsvWriter::num(times[0]),
             CsvWriter::num(times[1]), CsvWriter::num(times[2]),
             CsvWriter::num(times[3]),
             CsvWriter::num(rep.step_seconds()),
             std::to_string(rep.n_partitions)});
  }
  std::printf("Fig 12: speedup over n=1, GPT-XL, 64 GPUs\n\n");
  table.print();
  const auto& stats = adaptive.searcher().stats();
  std::printf("\nAlgorithm-1 ablation: %zu full searches, %zu range hits, "
              "%zu cache hits, %zu trial measurements; adaptive worse than "
              "oracle (>2%%) at %d/%d points\n",
              stats.full_searches, stats.range_hits, stats.cache_hits,
              stats.trials, mismatches, points);
  std::printf("range set: %s\n", adaptive.searcher().ranges().to_string().c_str());
  return 0;
}
