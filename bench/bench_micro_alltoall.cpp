/// google-benchmark microbench: simulated AllToAll scheduling throughput —
/// how fast the discrete-event engine replays collective-heavy graphs
/// (this bounds the cost of the adaptive search's trial probes).

#include <benchmark/benchmark.h>

#include "comm/all_to_all.h"
#include "common/units.h"
#include "core/moe_layer.h"
#include "sim/cluster.h"

namespace {

using namespace mpipe;

void BM_TimedAllToAllGraph(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  const int collectives = static_cast<int>(state.range(1));
  sim::Cluster cluster =
      sim::Cluster::dgx_a100_pod(std::max(1, devices / 8),
                                 std::min(8, devices));
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  for (auto _ : state) {
    sim::OpGraph g;
    for (int i = 0; i < collectives; ++i) {
      comm::alltoall_timed(g, world, 1 * MiB, "a2a", {});
    }
    const auto timing = cluster.time_only(g);
    benchmark::DoNotOptimize(timing.makespan);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * collectives);
}
BENCHMARK(BM_TimedAllToAllGraph)
    ->Args({8, 8})
    ->Args({8, 64})
    ->Args({64, 8})
    ->Args({64, 64});

void BM_AdaptiveProbe(benchmark::State& state) {
  // Cost of one full Algorithm-1 trial sweep at 64 devices.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(8, 8);
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh layer so the cache is cold every iteration.
    core::MoELayerOptions o;
    o.d_model = 2048;
    o.d_hidden = 8192;
    o.num_experts = 64;
    o.mode = core::ExecutionMode::kTimingOnly;
    core::MoELayer layer(cluster, o);
    state.ResumeTiming();
    benchmark::DoNotOptimize(layer.step_timing(8192).n_partitions);
  }
}
BENCHMARK(BM_AdaptiveProbe)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
