/// google-benchmark microbench: one full MoE training step end to end —
/// forward, MSE loss, backward, Adam — under the serial reference executor
/// and the concurrent op-graph executor at 1/4/8 pool workers. This is the
/// perf gate for the op-level concurrency layer: on a many-core host the
/// parallel rows should beat serial (independent devices' GEMMs and the
/// comm/mem-stream copies overlap); on a 1-core host they document the
/// executor's scheduling overhead instead. items_per_second is training
/// steps per second.

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/moe_layer.h"
#include "runtime/trainer.h"

namespace {

using namespace mpipe;

struct StepHarness {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer;
  runtime::Trainer trainer;

  static core::MoELayerOptions layer_options(bool parallel,
                                             bool profile = false,
                                             DType dtype = DType::kF32) {
    core::MoELayerOptions o;
    o.d_model = 64;
    o.d_hidden = 256;
    o.num_experts = 4;
    o.num_partitions = 4;  // fixed n: no search noise in the timing
    o.memory_reuse = true;
    o.strategy = core::ReuseStrategy::kS1;
    o.parallel_execution = parallel;
    o.profile_execution = profile;
    o.compute_dtype = dtype;
    o.seed = 13;
    return o;
  }

  static runtime::TrainerOptions trainer_options() {
    runtime::TrainerOptions t;
    t.workload.d_model = 64;
    t.workload.tokens_per_device = 256;
    t.workload.num_devices = 4;
    t.workload.seed = 29;
    // Keep the bench self-contained: measured curves would shift with the
    // committed CSVs, and the cost model does not affect the math.
    t.load_calibration = false;
    return t;
  }

  explicit StepHarness(bool parallel, bool profile = false,
                       DType dtype = DType::kF32)
      : layer(cluster, layer_options(parallel, profile, dtype)),
        trainer(layer, trainer_options()) {}
};

void run_steps(benchmark::State& state, bool parallel, std::size_t workers,
               bool profile = false) {
  ThreadPool::reset_shared(workers);
  StepHarness harness(parallel, profile);
  harness.trainer.train_step();  // warm up: buffers, staging, pool
  std::int64_t steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.trainer.train_step());
    ++steps;
  }
  state.SetItemsProcessed(steps);
  ThreadPool::reset_shared(0);
}

// UseRealTime: the work happens on pool workers, so the main thread's CPU
// clock would flatter the parallel rows — steps/s must be wall-clock.
void BM_TrainStepSerial(benchmark::State& state) {
  run_steps(state, /*parallel=*/false,
            static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_TrainStepSerial)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TrainStepParallel(benchmark::State& state) {
  run_steps(state, /*parallel=*/true,
            static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_TrainStepParallel)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Wall-clock profiling on (per-op timestamps + timeline reconstruction +
// measured-vs-modeled diff + trace JSON each step): the row documents the
// observability overhead against BM_TrainStepSerial/1. The recording
// itself is two steady_clock reads per op; the reconstruction/diff/JSON
// dominate whatever gap shows here.
void BM_TrainStepProfiled(benchmark::State& state) {
  run_steps(state, /*parallel=*/false,
            static_cast<std::size_t>(state.range(0)), /*profile=*/true);
}
BENCHMARK(BM_TrainStepProfiled)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- mixed-precision step rows --------------------------------------------
// One row per compute_dtype, serial executor, identical workload. steps/s
// documents the quantize/dequantize cost on the hot path; the counters are
// the paper's reduction axes, read off the StepReport of the last step:
// alltoall_payload_bytes (Fig-10 — bf16 is exactly half the f32 row, int8
// a quarter plus one fp32 scale per row) and expert_weight_bytes /
// peak_activation_bytes (Fig-9 — quantized weight copies and wire-format
// payload rings on the busiest device).
void run_steps_mixed(benchmark::State& state, DType dtype) {
  ThreadPool::reset_shared(1);
  StepHarness harness(/*parallel=*/false, /*profile=*/false, dtype);
  harness.trainer.train_step();  // warm up: buffers, staging, pool
  // Counters come from the *first* step: the router is fp32 for every
  // dtype, so step 1's routing — and with it the busiest sender's row
  // count — is identical across the three rows, and the byte ratios read
  // as pure dtype effects (later steps' trainings diverge numerically and
  // with them the routing).
  const core::StepReport r = harness.layer.last_report();
  std::int64_t steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.trainer.train_step());
    ++steps;
  }
  state.SetItemsProcessed(steps);
  state.counters["alltoall_payload_bytes"] =
      static_cast<double>(r.alltoall_payload_bytes);
  state.counters["expert_weight_bytes"] =
      static_cast<double>(r.expert_weight_bytes);
  state.counters["peak_activation_bytes"] =
      static_cast<double>(r.memory.activations);
  state.counters["peak_total_bytes"] =
      static_cast<double>(r.memory.total_peak);
  ThreadPool::reset_shared(0);
}

void BM_TrainStepMixedF32(benchmark::State& state) {
  run_steps_mixed(state, DType::kF32);
}
BENCHMARK(BM_TrainStepMixedF32)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_TrainStepMixedBf16(benchmark::State& state) {
  run_steps_mixed(state, DType::kBF16);
}
BENCHMARK(BM_TrainStepMixedBf16)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_TrainStepMixedInt8(benchmark::State& state) {
  run_steps_mixed(state, DType::kI8);
}
BENCHMARK(BM_TrainStepMixedInt8)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
